// Command freshsim runs one cache-freshness simulation: a scheme over a
// trace (built-in preset or external file), printing the aggregated
// metrics as text or JSON.
//
// Usage:
//
//	freshsim -preset reality-like -scheme hierarchical -items 5 -refresh 4h
//	freshsim -trace campus.contacts -scheme epidemic -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"freshcache"
	"freshcache/internal/core"
	"freshcache/internal/expt"
	"freshcache/internal/obs"
	"freshcache/internal/obs/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freshsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("freshsim", flag.ContinueOnError)
	var (
		preset    = fs.String("preset", "reality-like", "built-in trace preset (reality-like, infocom-like)")
		traceFile = fs.String("trace", "", "external trace file (overrides -preset)")
		scheme    = fs.String("scheme", "hierarchical", "freshness scheme (norefresh, direct, direct-rep, hierarchical-norep, hierarchical, epidemic, oracle)")
		items     = fs.Int("items", 5, "number of data items (sources at nodes 0..items-1)")
		refresh   = fs.Duration("refresh", 4*time.Hour, "refresh interval R")
		window    = fs.Duration("window", 0, "freshness window F (default R)")
		lifetime  = fs.Duration("lifetime", 0, "version lifetime L (default 2R)")
		caching   = fs.Int("caching", 8, "number of caching nodes K")
		queries   = fs.Float64("queries", 4, "queries per node per day (0 disables)")
		zipf      = fs.Float64("zipf", 1.0, "query popularity Zipf exponent")
		preq      = fs.Float64("preq", 0.9, "required refresh probability")
		fanout    = fs.Int("fanout", 3, "hierarchy fan-out bound")
		relays    = fs.Int("relays", 5, "max replication relays per destination")
		seed      = fs.Int64("seed", 1, "random seed")
		msgTime   = fs.Duration("msgtime", 0, "per-message transfer time (0 = unlimited bandwidth)")
		loss      = fs.Float64("loss", 0, "message loss probability [0,1)")
		churnUp   = fs.Duration("churn-up", 0, "mean node up-period (0 disables churn)")
		churnDown = fs.Duration("churn-down", 0, "mean node down-period")
		distKnow  = fs.Bool("distributed", false, "nodes use local gossiped rate knowledge instead of the oracle estimate")
		rebuild   = fs.Duration("rebuild", 0, "periodic hierarchy rebuild interval (0 = never)")
		relayCap  = fs.Int("relaycap", 0, "relay buffer capacity in copies (0 = unlimited)")
		asJSON    = fs.Bool("json", false, "emit the result as JSON")
		compare   = fs.String("compare", "", "comma-separated schemes to run side by side (overrides -scheme)")
		runs      = fs.Int("runs", 1, "replicate over this many consecutive seeds and report mean ± CI95")

		checkpoint = fs.String("checkpoint", "", "with -runs: journal each completed replicate to this file (JSONL), enabling -resume")
		resume     = fs.Bool("resume", false, "replay completed replicates from the -checkpoint journal instead of re-running them")

		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")

		obsDir       = fs.String("obs", "", "directory for observability output: events.jsonl, trace.json (Perfetto), metrics.om (OpenMetrics) and manifest.json")
		storePath    = fs.String("store", "", "append this run's record (provenance, metric snapshot, dispositions) to the cross-run results store at this path (JSONL; query with obsreport trend/query/gate)")
		obsSample    = fs.Int("obs-sample", 1, "keep 1 in N trace events (1 = all)")
		obsBuffer    = fs.Int("obs-buffer", obs.DefaultBufferCap, "per-run trace ring-buffer capacity in events")
		lineage      = fs.Bool("lineage", false, "collect causal refresh-lineage spans (generation → duty → handoff → delivery trees) and write lineage.jsonl to the -obs directory (requires -obs)")
		timelineTick = fs.Duration("timeline-tick", 0, "simulated-time telemetry sampling period: snapshot freshness ratio, cumulative counts and per-node/item copy age every tick into timeline.csv in the -obs directory (0 = off, negative = auto tick of measurement-phase/240; requires -obs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	if *obsSample < 1 {
		return fmt.Errorf("obs-sample must be >= 1, got %d", *obsSample)
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *checkpoint != "" && (*runs <= 1 || *compare != "") {
		return fmt.Errorf("-checkpoint applies to replicated runs only (-runs > 1, without -compare)")
	}
	if (*lineage || *timelineTick != 0) && *obsDir == "" {
		return fmt.Errorf("-lineage and -timeline-tick require -obs (the output directory)")
	}
	// The observer exists when anything consumes its registry: trace output
	// (-obs) or the results store (-store). Nil otherwise.
	var observer *obs.Observer
	if *obsDir != "" || *storePath != "" {
		if *obsDir != "" {
			if err := os.MkdirAll(*obsDir, 0o755); err != nil {
				return err
			}
		}
		observer = obs.NewObserver(obs.Config{SampleEvery: *obsSample, BufferCap: *obsBuffer,
			Lineage: *lineage, TimelineTick: timelineTick.Seconds()})
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "freshsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "freshsim: memprofile:", err)
			}
		}()
	}

	specs := make([]freshcache.ItemSpec, *items)
	for i := range specs {
		specs[i] = freshcache.ItemSpec{Source: i, Refresh: *refresh, Window: *window, Lifetime: *lifetime}
	}
	baseOpts := []freshcache.Option{
		freshcache.WithItems(specs...),
		freshcache.WithCachingNodes(*caching),
		freshcache.WithSeed(*seed),
		freshcache.WithFreshnessRequirement(*preq),
		freshcache.WithHierarchyFanout(*fanout),
		freshcache.WithMaxRelays(*relays),
	}
	opts := append([]freshcache.Option{freshcache.WithScheme(freshcache.SchemeName(*scheme))}, baseOpts...)
	if *traceFile != "" {
		baseOpts = append(baseOpts, freshcache.WithTraceFile(*traceFile))
	} else {
		baseOpts = append(baseOpts, freshcache.WithPreset(*preset))
	}
	if *queries > 0 {
		baseOpts = append(baseOpts, freshcache.WithQueryWorkload(*queries, *zipf))
	}
	if *msgTime > 0 {
		baseOpts = append(baseOpts, freshcache.WithBandwidth(*msgTime))
	}
	if *loss > 0 {
		baseOpts = append(baseOpts, freshcache.WithMessageLoss(*loss))
	}
	if *churnUp > 0 || *churnDown > 0 {
		baseOpts = append(baseOpts, freshcache.WithChurn(*churnUp, *churnDown))
	}
	if *distKnow {
		baseOpts = append(baseOpts, freshcache.WithDistributedKnowledge())
	}
	if *rebuild > 0 {
		baseOpts = append(baseOpts, freshcache.WithRebuildInterval(*rebuild))
	}
	if *relayCap > 0 {
		baseOpts = append(baseOpts, freshcache.WithRelayBufferCap(*relayCap))
	}
	opts = append(opts, baseOpts...)

	ledger := &expt.Ledger{}
	err := func() error {
		if *compare != "" {
			return runComparison(*compare, baseOpts, observer)
		}
		if *runs > 1 {
			var journal *expt.Journal
			if *checkpoint != "" {
				j, jerr := expt.OpenJournal(*checkpoint, *resume)
				if jerr != nil {
					return jerr
				}
				defer j.Close()
				journal = j
				if *resume {
					fmt.Fprintf(os.Stderr, "freshsim: resuming from %s (%d journaled replicate(s))\n",
						*checkpoint, journal.Len())
				}
			}
			traceName := *preset
			if *traceFile != "" {
				traceName = "file:" + *traceFile
			}
			return runReplicated(replicatedConfig{
				runs:       *runs,
				baseSeed:   *seed,
				scheme:     *scheme,
				traceName:  traceName,
				experiment: replicatedExperimentID(fs),
				journal:    journal,
				ledger:     ledger,
			}, baseOpts, observer)
		}

		obsOpts, commit := obsRun(observer, "freshsim/"+*scheme, *scheme)
		opts = append(opts, obsOpts...)
		sim, err := freshcache.New(opts...)
		if err != nil {
			return err
		}
		res, err := sim.Run()
		if err != nil {
			return err
		}
		commit()
		observer.RecordRun(res.Scheme, res)

		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(res)
		}
		fmt.Println(res.String())
		fmt.Printf("caching nodes:       %v\n", sim.CachingNodes())
		fmt.Printf("freshness ratio:     %.4f\n", res.FreshnessRatio)
		fmt.Printf("valid access ratio:  %.4f (fresh %.4f, answered %.4f of %d queries)\n",
			res.ValidAnswers, res.FreshAnswers, res.AnsweredOK, res.Queries)
		fmt.Printf("refresh delay:       mean %s, p90 %s, on-time %.4f\n",
			time.Duration(res.MeanRefreshDelay*float64(time.Second)).Round(time.Second),
			time.Duration(res.P90RefreshDelay*float64(time.Second)).Round(time.Second),
			res.OnTimeRatio)
		fmt.Printf("overhead:            %.2f tx/version (%d total; source share %.3f)\n",
			res.TxPerVersion, res.Transmissions, res.SourceTxShare)
		fmt.Printf("first-delivery on-time ratio: %.4f (requirement %.2f)\n",
			sim.FirstDeliveryOnTimeRatio(), *preq)
		return nil
	}()
	if err != nil {
		return err
	}
	if observer != nil && *obsDir != "" {
		if err := writeObs(*obsDir, observer, start, args, *seed, ledger, *checkpoint, *resume); err != nil {
			return err
		}
	}
	// The store record appends last, after all stdout, so report output is
	// unaffected by -store.
	if *storePath != "" {
		rec := store.NewRecord("freshsim")
		rec.Command = append([]string{"freshsim"}, args...)
		rec.Seed = *seed
		// The flag digest already covers exactly the simulation-relevant
		// configuration (output and checkpointing flags excluded).
		rec.ConfigDigest = strings.TrimPrefix(replicatedExperimentID(fs), "freshsim-")
		rec.WallClockSeconds = time.Since(start).Seconds()
		snap := observer.Metrics.Snapshot()
		rec.Metrics = store.FlattenMetrics(snap, observer.SchemeRollups())
		rec.Histograms = snap.Histograms
		rs := ledger.Summary()
		rs.Journal = *checkpoint
		rs.Resumed = *resume
		rec.Resume = &rs
		if err := store.Append(*storePath, rec); err != nil {
			return err
		}
	}
	return nil
}

// obsRun opens the per-run observability collectors for one labelled
// simulation: the event trace plus, when enabled on the observer, the
// lineage span tree and the telemetry timeline. It returns the options to
// attach and a commit func to call after a successful run. Everything is
// nil-safe, so callers need no -obs conditionals.
func obsRun(observer *obs.Observer, label, scheme string) ([]freshcache.Option, func()) {
	rt := observer.Run(label)
	lin := observer.RunLineage(label, scheme)
	tl := observer.RunTimeline(label)
	opts := []freshcache.Option{freshcache.WithObservability(rt, observer.Registry())}
	if lin != nil {
		opts = append(opts, freshcache.WithLineage(lin))
	}
	if tl != nil {
		tick := time.Duration(observer.TimelineTick() * float64(time.Second))
		opts = append(opts, freshcache.WithTimeline(tl, tick))
	}
	return opts, func() {
		observer.Commit(rt)
		observer.CommitLineage(lin)
		observer.CommitTimeline(tl)
	}
}

// obsFile is one observability artifact: its filename and writer.
type obsFile struct {
	name  string
	write func(*os.File) error
}

// writeObs flushes the observer's trace and a run manifest into dir.
func writeObs(dir string, observer *obs.Observer, start time.Time, args []string, seed int64,
	ledger *expt.Ledger, checkpoint string, resumed bool) error {
	var outputs []string
	files := []obsFile{
		{"events.jsonl", func(f *os.File) error { return observer.WriteJSONL(f) }},
		{"trace.json", func(f *os.File) error { return observer.WriteChromeTrace(f) }},
		{"metrics.om", func(f *os.File) error { return obs.WriteOpenMetrics(f, observer.Metrics.Snapshot()) }},
	}
	if observer.LineageEnabled() {
		files = append(files, obsFile{"lineage.jsonl", func(f *os.File) error { return observer.WriteLineageJSONL(f) }})
	}
	if observer.TimelineTick() != 0 {
		files = append(files, obsFile{"timeline.csv", func(f *os.File) error { return observer.WriteTimelineCSV(f) }})
	}
	for _, f := range files {
		path := filepath.Join(dir, f.name)
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f.write(out); err != nil {
			out.Close()
			return fmt.Errorf("obs: %s: %w", f.name, err)
		}
		if err := out.Close(); err != nil {
			return err
		}
		outputs = append(outputs, path)
	}
	m := obs.NewManifest("freshsim")
	m.Command = append([]string{"freshsim"}, args...)
	m.Seed = seed
	m.Outputs = outputs
	snap := observer.Metrics.Snapshot()
	m.Metrics = &snap
	st := observer.Stats()
	m.Events = &st
	m.SchemeStats = observer.SchemeRollups()
	m.Failures = ledger.Failures()
	if checkpoint != "" || len(m.Failures) > 0 {
		rs := ledger.Summary()
		rs.Journal = checkpoint
		rs.Resumed = resumed
		m.Resume = &rs
	}
	m.FinishResources(start)
	return m.Write(filepath.Join(dir, "manifest.json"))
}

// replicatedConfig parameterises one replicated (-runs > 1) invocation.
type replicatedConfig struct {
	runs       int
	baseSeed   int64
	scheme     string
	traceName  string
	experiment string
	journal    *expt.Journal
	ledger     *expt.Ledger
}

// replicatedExperimentID digests the simulation-relevant flags into the
// sweep's experiment ID, so a checkpoint journal written under one
// configuration can never replay into a run whose flags changed (the
// journal matches on the sweep fingerprint and per-cell seeds, both of
// which incorporate the experiment ID). Output and checkpointing flags are
// excluded: moving the journal or toggling -obs must not invalidate it.
func replicatedExperimentID(fs *flag.FlagSet) string {
	skip := map[string]bool{
		"json": true, "obs": true, "obs-sample": true, "obs-buffer": true,
		"lineage": true, "timeline-tick": true,
		"cpuprofile": true, "memprofile": true,
		"checkpoint": true, "resume": true, "compare": true,
		"store": true,
	}
	h := fnv.New64a()
	fs.VisitAll(func(f *flag.Flag) { // lexical order: deterministic
		if skip[f.Name] {
			return
		}
		fmt.Fprintf(h, "%s=%s\x1f", f.Name, f.Value.String())
	})
	return fmt.Sprintf("freshsim-%016x", h.Sum64())
}

// runReplicated runs the scheme over `runs` consecutive seeds and reports
// the mean and 95% confidence half-width of the headline metrics. The
// replicates are routed through the expt sweep runner for its crash-safety
// machinery: with a checkpoint journal attached every completed replicate
// is journaled and synced, and -resume replays journaled replicates instead
// of re-running them — the stdout report is byte-identical to an
// uninterrupted run.
func runReplicated(cfg replicatedConfig, baseOpts []freshcache.Option, observer *obs.Observer) error {
	s := expt.Sweep{
		Experiment: cfg.experiment,
		Presets:    []string{cfg.traceName},
		Points:     1,
		Schemes:    []string{cfg.scheme},
		Replicates: cfg.runs,
		Parallel:   1,
		BaseSeed:   cfg.baseSeed,
		Obs:        observer,
		Journal:    cfg.journal,
		Ledger:     cfg.ledger,
	}
	// Replicates run sequentially (Parallel: 1), so one recycled state
	// bundle serves every run: each replicate's metrics are extracted
	// before the next simulation is built.
	reuse := core.NewReuse()
	res, err := s.Run(func(c expt.Cell) ([]float64, error) {
		// The replicate semantics predate the sweep runner: replicate i
		// simulates seed base+i, so existing invocations keep their numbers.
		// (c.Seed still namespaces the journal records for replay checks.)
		simSeed := cfg.baseSeed + int64(c.Replicate)
		opts := append([]freshcache.Option{
			freshcache.WithScheme(freshcache.SchemeName(cfg.scheme)),
			freshcache.WithRunStateReuse(reuse),
		}, baseOpts...)
		// Applied last so it overrides the base -seed flag.
		opts = append(opts, freshcache.WithSeed(simSeed))
		obsOpts, commit := obsRun(observer, fmt.Sprintf("freshsim/%s/seed-%d", cfg.scheme, simSeed), cfg.scheme)
		opts = append(opts, obsOpts...)
		sim, err := freshcache.New(opts...)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run()
		if err != nil {
			return nil, err
		}
		commit()
		observer.RecordRun(res.Scheme, res)
		return []float64{res.FreshnessRatio, res.ValidAccessRate, res.TxPerVersion}, nil
	})
	if err != nil {
		return err
	}
	if n := res.ReplayedCells(); n > 0 {
		fmt.Fprintf(os.Stderr, "freshsim: replayed %d of %d replicate(s) from checkpoint\n", n, cfg.runs)
	}
	report := func(name string, metric int) {
		fmt.Printf("%-20s %.4f ± %.4f (CI95 over %d seeds)\n",
			name+":", res.Mean(0, 0, 0, metric), res.CI95(0, 0, 0, metric), cfg.runs)
	}
	fmt.Printf("%s over seeds %d..%d\n", cfg.scheme, cfg.baseSeed, cfg.baseSeed+int64(cfg.runs)-1)
	report("freshness ratio", 0)
	report("valid access rate", 1)
	report("tx/version", 2)
	return nil
}

// runComparison runs each named scheme over the identical configuration
// and prints one comparison row per scheme.
func runComparison(schemes string, baseOpts []freshcache.Option, observer *obs.Observer) error {
	fmt.Printf("%-20s  %-9s  %-11s  %-10s  %-12s  %-8s\n",
		"scheme", "freshness", "validAccess", "tx/version", "sourceShare", "loadGini")
	for _, name := range strings.Split(schemes, ",") {
		name = strings.TrimSpace(name)
		opts := append([]freshcache.Option{freshcache.WithScheme(freshcache.SchemeName(name))}, baseOpts...)
		obsOpts, commit := obsRun(observer, "freshsim/"+name, name)
		opts = append(opts, obsOpts...)
		sim, err := freshcache.New(opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res, err := sim.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		commit()
		observer.RecordRun(res.Scheme, res)
		fmt.Printf("%-20s  %-9.4f  %-11.4f  %-10.2f  %-12.3f  %-8.3f\n",
			name, res.FreshnessRatio, res.ValidAccessRate, res.TxPerVersion,
			res.SourceTxShare, res.LoadGini)
	}
	return nil
}
