// Package freshcache is a trace-driven simulator and protocol library for
// distributed maintenance of cache freshness in opportunistic mobile
// networks, reproducing Gao, Cao, Srivatsa and Iyengar (ICDCS 2012).
//
// Personal mobile devices meet intermittently; data items are cached
// cooperatively at a few central "caching nodes" and refreshed
// periodically at their sources. The library implements the paper's
// scheme — a refresh hierarchy in which each caching node is responsible
// for refreshing a specific set of other caching nodes, backed by
// probabilistic replication through relay nodes so every refresh meets its
// freshness window with a required probability — plus every baseline the
// evaluation compares against, the mobility models, and the full
// experiment suite.
//
// Quickstart:
//
//	sim, err := freshcache.New(
//		freshcache.WithPreset("infocom-like"),
//		freshcache.WithScheme(freshcache.SchemeHierarchical),
//		freshcache.WithUniformItems(5, 2*time.Hour),
//		freshcache.WithCachingNodes(8),
//		freshcache.WithQueryWorkload(4, 1.0),
//		freshcache.WithSeed(42),
//	)
//	if err != nil { ... }
//	res, err := sim.Run()
//	fmt.Println(res.FreshnessRatio, res.ValidAnswers, res.TxPerVersion)
package freshcache

import (
	"errors"
	"fmt"
	"time"

	"freshcache/internal/cache"
	"freshcache/internal/core"
	"freshcache/internal/metrics"
	"freshcache/internal/mobility"
	"freshcache/internal/network"
	"freshcache/internal/obs"
	"freshcache/internal/trace"
)

// Result is the aggregated outcome of one simulation run. See the field
// documentation in the metrics package; headline fields are
// FreshnessRatio, ValidAnswers, TxPerVersion and SourceTxShare.
type Result = metrics.Result

// SchemeName selects a freshness-maintenance protocol.
type SchemeName string

// The available schemes, from floor to ceiling.
const (
	// SchemeNoRefresh fills caches once and never refreshes (floor).
	SchemeNoRefresh SchemeName = "norefresh"
	// SchemeDirect refreshes caching nodes only on direct contact with the
	// data source.
	SchemeDirect SchemeName = "direct"
	// SchemeDirectReplicated keeps all responsibility at the source but
	// adds probabilistic relay replication.
	SchemeDirectReplicated SchemeName = "direct-rep"
	// SchemeHierarchicalNoRep distributes responsibility through the
	// refresh hierarchy without relay replication.
	SchemeHierarchicalNoRep SchemeName = "hierarchical-norep"
	// SchemeHierarchical is the paper's scheme: hierarchy + replication.
	SchemeHierarchical SchemeName = "hierarchical"
	// SchemeRandomReplicated is the hierarchy with uniformly random relay
	// selection — the ablation showing the analysis-driven selection
	// matters.
	SchemeRandomReplicated SchemeName = "random-rep"
	// SchemeSprayAndWait is the knowledge-free DTN baseline: L copies of
	// each version binary-sprayed through the network.
	SchemeSprayAndWait SchemeName = "spray"
	// SchemeAdaptive is SchemeHierarchical with a feedback-controlled
	// per-item relay budget driven by measured on-time delivery.
	SchemeAdaptive SchemeName = "adaptive"
	// SchemeEpidemic floods every version to every node (ceiling).
	SchemeEpidemic SchemeName = "epidemic"
	// SchemeOracle refreshes all caches instantly and for free (bound).
	SchemeOracle SchemeName = "oracle"
)

// Schemes returns every scheme name in canonical reporting order.
func Schemes() []SchemeName {
	var out []SchemeName
	for _, s := range core.Schemes() {
		out = append(out, SchemeName(s.Name))
	}
	return out
}

// Presets returns the built-in synthetic trace presets.
func Presets() []string {
	return []string{"reality-like", "infocom-like"}
}

// Contact is one pairwise contact interval of a user-supplied trace.
type Contact struct {
	A, B       int
	Start, End time.Duration
}

// ItemSpec describes one periodically refreshed data item.
type ItemSpec struct {
	// Source is the node that generates the item's versions.
	Source int
	// Refresh is the interval between versions.
	Refresh time.Duration
	// Phase offsets the item's publication schedule within the refresh
	// cycle (0 <= Phase < Refresh); items need not publish simultaneously.
	Phase time.Duration
	// Window is the freshness requirement: a new version should reach
	// every caching node within this duration. Defaults to Refresh.
	Window time.Duration
	// Lifetime is how long a version stays valid. Defaults to 2×Refresh.
	Lifetime time.Duration
	// Size in abstract storage units (default 1).
	Size int
}

type options struct {
	presetName string
	traceFile  string
	custom     *trace.Trace

	scheme          SchemeName
	items           []ItemSpec
	cachingNodes    int
	seed            int64
	queriesPerDay   float64
	zipf            float64
	pReq            float64
	fanout          int
	maxRelays       int
	warmup          float64
	msgTime         float64
	cacheCapacity   int
	cachePolicy     cache.Policy
	distributed     bool
	dropProb        float64
	churnUp         float64
	churnDown       float64
	relayBufCap     int
	sprayCopies     int
	queryRelays     int
	rebuildInterval float64
	obsTrace        *obs.RunTrace
	obsMetrics      *obs.Registry
	obsLineage      *obs.Lineage
	obsTimeline     *obs.Timeline
	timelineTick    float64
	reuse           *core.Reuse
}

// Option configures a Simulation.
type Option func(*options) error

// WithPreset selects a built-in synthetic trace ("reality-like" or
// "infocom-like").
func WithPreset(name string) Option {
	return func(o *options) error {
		if _, err := mobility.Preset(name); err != nil {
			return err
		}
		o.presetName = name
		return nil
	}
}

// WithTraceFile loads the contact trace from a file in the text format
// documented in the README (one "a b start end" line per contact).
func WithTraceFile(path string) Option {
	return func(o *options) error {
		if path == "" {
			return errors.New("freshcache: empty trace path")
		}
		o.traceFile = path
		return nil
	}
}

// WithContacts supplies a custom contact trace directly: n nodes observed
// for the given duration.
func WithContacts(n int, duration time.Duration, contacts []Contact) Option {
	return func(o *options) error {
		tr := &trace.Trace{Name: "custom", N: n, Duration: duration.Seconds()}
		for _, c := range contacts {
			tr.Contacts = append(tr.Contacts, trace.Contact{
				A: trace.NodeID(c.A), B: trace.NodeID(c.B),
				Start: c.Start.Seconds(), End: c.End.Seconds(),
			})
		}
		tr.Normalize()
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("freshcache: %w", err)
		}
		o.custom = tr
		return nil
	}
}

// WithScheme selects the freshness-maintenance protocol (default
// SchemeHierarchical).
func WithScheme(s SchemeName) Option {
	return func(o *options) error {
		if _, err := core.SchemeByName(string(s)); err != nil {
			return fmt.Errorf("freshcache: %w", err)
		}
		o.scheme = s
		return nil
	}
}

// WithItems supplies the data items explicitly.
func WithItems(items ...ItemSpec) Option {
	return func(o *options) error {
		if len(items) == 0 {
			return errors.New("freshcache: no items")
		}
		o.items = append([]ItemSpec(nil), items...)
		return nil
	}
}

// WithUniformItems creates n identical items refreshed at the given
// interval, sourced at nodes 0..n-1.
func WithUniformItems(n int, refresh time.Duration) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("freshcache: non-positive item count %d", n)
		}
		o.items = o.items[:0]
		for i := 0; i < n; i++ {
			o.items = append(o.items, ItemSpec{Source: i, Refresh: refresh})
		}
		return nil
	}
}

// WithCachingNodes sets how many caching nodes (NCLs) are selected
// (default 8).
func WithCachingNodes(k int) Option {
	return func(o *options) error {
		if k <= 0 {
			return fmt.Errorf("freshcache: non-positive caching node count %d", k)
		}
		o.cachingNodes = k
		return nil
	}
}

// WithSeed sets the seed driving all randomness (default 1).
func WithSeed(seed int64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithQueryWorkload enables the query workload: each node issues
// perNodePerDay queries per day over items with the given Zipf popularity
// exponent.
func WithQueryWorkload(perNodePerDay, zipfExponent float64) Option {
	return func(o *options) error {
		if perNodePerDay <= 0 || zipfExponent <= 0 {
			return fmt.Errorf("freshcache: bad workload (%v queries/day, zipf %v)", perNodePerDay, zipfExponent)
		}
		o.queriesPerDay = perNodePerDay
		o.zipf = zipfExponent
		return nil
	}
}

// WithFreshnessRequirement sets the required probability that a new
// version reaches each caching node within its freshness window
// (default 0.9).
func WithFreshnessRequirement(p float64) Option {
	return func(o *options) error {
		if p <= 0 || p > 1 {
			return fmt.Errorf("freshcache: requirement %v outside (0,1]", p)
		}
		o.pReq = p
		return nil
	}
}

// WithHierarchyFanout bounds children per node in the refresh hierarchy
// (default 3).
func WithHierarchyFanout(fanout int) Option {
	return func(o *options) error {
		if fanout <= 0 {
			return fmt.Errorf("freshcache: non-positive fanout %d", fanout)
		}
		o.fanout = fanout
		return nil
	}
}

// WithMaxRelays bounds replication relays per destination (default 5).
func WithMaxRelays(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("freshcache: non-positive relay bound %d", n)
		}
		o.maxRelays = n
		return nil
	}
}

// WithWarmupFraction sets the fraction of the trace spent estimating
// contact rates before measurement starts (default 0.3).
func WithWarmupFraction(f float64) Option {
	return func(o *options) error {
		if f <= 0 || f >= 1 {
			return fmt.Errorf("freshcache: warmup fraction %v outside (0,1)", f)
		}
		o.warmup = f
		return nil
	}
}

// WithBandwidth limits contacts to one message per msgTime of contact
// duration, so short contacts truncate exchanges (default: unlimited).
func WithBandwidth(msgTime time.Duration) Option {
	return func(o *options) error {
		if msgTime <= 0 {
			return fmt.Errorf("freshcache: non-positive message time %v", msgTime)
		}
		o.msgTime = msgTime.Seconds()
		return nil
	}
}

// WithCacheCapacity bounds each caching node's store, in item size units
// (default: unlimited). Overfull stores evict per the configured policy
// (see WithCachePolicy; default LRU).
func WithCacheCapacity(units int) Option {
	return func(o *options) error {
		if units <= 0 {
			return fmt.Errorf("freshcache: non-positive capacity %d", units)
		}
		o.cacheCapacity = units
		return nil
	}
}

// WithCachePolicy selects the store eviction policy: "lru" (default) or
// "lfu".
func WithCachePolicy(policy string) Option {
	return func(o *options) error {
		switch policy {
		case "lru":
			o.cachePolicy = cache.EvictLRU
		case "lfu":
			o.cachePolicy = cache.EvictLFU
		default:
			return fmt.Errorf("freshcache: unknown cache policy %q (have lru, lfu)", policy)
		}
		return nil
	}
}

// WithDistributedKnowledge makes every node act on its own local
// contact-rate view (direct observations plus transitive gossip) instead
// of the converged oracle estimate — the realistic deployment setting.
func WithDistributedKnowledge() Option {
	return func(o *options) error {
		o.distributed = true
		return nil
	}
}

// WithMessageLoss drops each transmission independently with probability
// p in [0, 1).
func WithMessageLoss(p float64) Option {
	return func(o *options) error {
		if p < 0 || p >= 1 {
			return fmt.Errorf("freshcache: loss probability %v outside [0,1)", p)
		}
		o.dropProb = p
		return nil
	}
}

// WithChurn turns nodes off and on with exponential up and down periods
// of the given means; contacts involving a down node are suppressed.
func WithChurn(meanUp, meanDown time.Duration) Option {
	return func(o *options) error {
		if meanUp <= 0 || meanDown <= 0 {
			return fmt.Errorf("freshcache: churn periods must be positive, got %v/%v", meanUp, meanDown)
		}
		o.churnUp = meanUp.Seconds()
		o.churnDown = meanDown.Seconds()
		return nil
	}
}

// WithRelayBufferCap bounds how many distinct refresh copies a relay node
// parks at once (default: unlimited); overfull buffers evict the copy
// closest to expiry.
func WithRelayBufferCap(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("freshcache: non-positive relay buffer cap %d", n)
		}
		o.relayBufCap = n
		return nil
	}
}

// WithQueryDelegation enables the two-way relayed access path: each
// pending query is handed to up to `relays` intermediate nodes, which
// fetch the data from any provider they meet and carry the response back
// to the requester. Improves access delay and coverage at the cost of
// extra query/data transmissions.
func WithQueryDelegation(relays int) Option {
	return func(o *options) error {
		if relays <= 0 {
			return fmt.Errorf("freshcache: non-positive query relay count %d", relays)
		}
		o.queryRelays = relays
		return nil
	}
}

// WithRebuildInterval makes the scheme re-estimate contact rates (over
// the window since the last rebuild) and reconstruct its refresh
// hierarchy every interval — adaptation for drifting mobility. Only
// schemes with a hierarchy react; others ignore it.
func WithRebuildInterval(interval time.Duration) Option {
	return func(o *options) error {
		if interval <= 0 {
			return fmt.Errorf("freshcache: non-positive rebuild interval %v", interval)
		}
		o.rebuildInterval = interval.Seconds()
		return nil
	}
}

// WithObservability attaches a per-run event trace and metric registry
// (package internal/obs) to the simulation: the engine and scheme emit
// typed events (contact begin/end, refresh scheduled/delivered,
// replication planned, cache hit/miss, …) into tr and count hot-path
// totals in reg. Either argument may be nil. The option exists for the
// module's own commands; callers outside the module observe runs through
// Result instead.
func WithObservability(tr *obs.RunTrace, reg *obs.Registry) Option {
	return func(o *options) error {
		o.obsTrace = tr
		o.obsMetrics = reg
		return nil
	}
}

// WithLineage attaches a causal lineage collector: every generated version
// gets a root span, extended at each duty assumption, relay handoff and
// delivery, so the full generation→hop→…→delivery tree of each refresh can
// be reconstructed afterwards. Nil is allowed (lineage off). Like
// WithObservability, this option exists for the module's own commands.
func WithLineage(l *obs.Lineage) Option {
	return func(o *options) error {
		o.obsLineage = l
		return nil
	}
}

// WithTimeline attaches a simulated-time telemetry sampler that snapshots
// the freshness ratio, cumulative contact/delivery/transmission counts and
// per-(caching node, item) copy age every tick of simulated time (tick <= 0
// selects the engine default, measurement phase / 240). Enabling it
// schedules extra simulator events, so Result.SimulatedEventCount grows.
func WithTimeline(tl *obs.Timeline, tick time.Duration) Option {
	return func(o *options) error {
		o.obsTimeline = tl
		o.timelineTick = tick.Seconds()
		return nil
	}
}

// WithRunStateReuse recycles worker-local engine state (simulator event
// storage, scheme scratch arenas, plan buffers) from a previous
// Simulation that used the same Reuse bundle. Intended for drivers that
// run many simulations back-to-back on one goroutine (freshsim's -runs
// mode, the sweep runner). Handing the bundle to a new Simulation
// invalidates the previous one entirely — including its post-run
// accessors (CachingNodes, RefreshTree) — so extract everything needed
// from a run before building the next. Nil is allowed (no reuse).
func WithRunStateReuse(r *core.Reuse) Option {
	return func(o *options) error {
		o.reuse = r
		return nil
	}
}

// WithSprayCopies sets the per-version copy budget of the spray-and-wait
// scheme (default 8). Only meaningful with SchemeSprayAndWait.
func WithSprayCopies(l int) Option {
	return func(o *options) error {
		if l <= 0 {
			return fmt.Errorf("freshcache: non-positive spray copies %d", l)
		}
		o.sprayCopies = l
		return nil
	}
}

// Simulation is one configured run. Create with New; each Simulation runs
// once.
type Simulation struct {
	eng *core.Engine
	ran bool
}

// New builds a simulation from the options. Exactly one trace source
// (preset, file or custom contacts) must be provided; unspecified knobs
// take the documented defaults.
func New(opts ...Option) (*Simulation, error) {
	o := options{
		scheme:       SchemeHierarchical,
		cachingNodes: 8,
		seed:         1,
		zipf:         1.0,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("freshcache: nil option")
		}
		if err := opt(&o); err != nil {
			return nil, err
		}
	}

	tr, err := resolveTrace(&o)
	if err != nil {
		return nil, err
	}
	if len(o.items) == 0 {
		return nil, errors.New("freshcache: no items configured (use WithItems or WithUniformItems)")
	}
	items := make([]cache.Item, len(o.items))
	for i, spec := range o.items {
		window := spec.Window
		if window == 0 {
			window = spec.Refresh
		}
		lifetime := spec.Lifetime
		if lifetime == 0 {
			lifetime = 2 * spec.Refresh
		}
		size := spec.Size
		if size == 0 {
			size = 1
		}
		items[i] = cache.Item{
			ID:              cache.ItemID(i),
			Source:          trace.NodeID(spec.Source),
			Phase:           spec.Phase.Seconds(),
			RefreshInterval: spec.Refresh.Seconds(),
			FreshnessWindow: window.Seconds(),
			Lifetime:        lifetime.Seconds(),
			Size:            size,
		}
	}
	catalog, err := cache.NewCatalog(items)
	if err != nil {
		return nil, fmt.Errorf("freshcache: %w", err)
	}
	var scheme core.Scheme
	if o.scheme == SchemeSprayAndWait && o.sprayCopies > 0 {
		scheme = core.NewSprayAndWait(o.sprayCopies)
	} else {
		scheme, err = core.SchemeByName(string(o.scheme))
		if err != nil {
			return nil, fmt.Errorf("freshcache: %w", err)
		}
	}

	cfg := core.Config{
		Trace:           tr,
		Catalog:         catalog,
		Scheme:          scheme,
		NumCachingNodes: o.cachingNodes,
		WarmupFraction:  o.warmup,
		PReq:            o.pReq,
		MaxFanout:       o.fanout,
		MaxRelays:       o.maxRelays,
		CacheCapacity:   o.cacheCapacity,
		CachePolicy:     o.cachePolicy,
		Seed:            o.seed,
		MsgTime:         o.msgTime,
		DropProb:        o.dropProb,
		RelayBufferCap:  o.relayBufCap,
		RebuildInterval: o.rebuildInterval,
		QueryRelays:     o.queryRelays,
		Churn:           network.ChurnConfig{MeanUp: o.churnUp, MeanDown: o.churnDown},
		Obs:             o.obsTrace,
		Metrics:         o.obsMetrics,
		Lineage:         o.obsLineage,
		Timeline:        o.obsTimeline,
		TimelineTick:    o.timelineTick,
		Reuse:           o.reuse,
	}
	if o.distributed {
		cfg.Knowledge = core.KnowledgeDistributed
	}
	if o.queriesPerDay > 0 {
		cfg.Workload = cache.WorkloadConfig{
			QueryRate:    o.queriesPerDay / (24 * 3600),
			ZipfExponent: o.zipf,
		}
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("freshcache: %w", err)
	}
	return &Simulation{eng: eng}, nil
}

func resolveTrace(o *options) (*trace.Trace, error) {
	sources := 0
	for _, set := range []bool{o.presetName != "", o.traceFile != "", o.custom != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, errors.New("freshcache: provide exactly one of WithPreset, WithTraceFile, WithContacts")
	}
	switch {
	case o.presetName != "":
		gen, err := mobility.Preset(o.presetName)
		if err != nil {
			return nil, err
		}
		return gen.Generate(o.seed)
	case o.traceFile != "":
		return trace.ReadFile(o.traceFile)
	default:
		return o.custom, nil
	}
}

// Run executes the simulation and returns the aggregated result. A
// Simulation runs at most once.
func (s *Simulation) Run() (Result, error) {
	if s.ran {
		return Result{}, errors.New("freshcache: simulation already ran")
	}
	s.ran = true
	return s.eng.Run()
}

// CachingNodes returns the selected caching-node IDs (after Run).
func (s *Simulation) CachingNodes() []int {
	rt := s.eng.Runtime()
	if rt == nil {
		return nil
	}
	out := make([]int, len(rt.CachingNodes))
	for i, n := range rt.CachingNodes {
		out[i] = int(n)
	}
	return out
}

// DelayCDF returns, for each probe duration, the fraction of refresh
// deliveries that arrived within it (after Run).
func (s *Simulation) DelayCDF(probes ...time.Duration) []float64 {
	ps := make([]float64, len(probes))
	for i, p := range probes {
		ps[i] = p.Seconds()
	}
	return s.eng.Collector().DelayCDF(ps)
}

// FirstDeliveryOnTimeRatio returns the fraction of (item, version, caching
// node) triples whose first delivery met the freshness window (after Run)
// — the quantity the probabilistic-replication analysis bounds from below
// by the configured requirement.
func (s *Simulation) FirstDeliveryOnTimeRatio() float64 {
	return s.eng.Collector().FirstDeliveryOnTimeRatio()
}

// ContactsDispatched returns how many trace contacts the run dispatched to
// the protocol stack (after Run) — the unit per-contact benchmarks
// normalize by.
func (s *Simulation) ContactsDispatched() int {
	return s.eng.ContactsDispatched()
}
